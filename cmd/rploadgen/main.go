// Command rploadgen is the load harness for the sharded mining service: it
// simulates thousands of tenants firing Zipf-skewed mining traffic, sweeps
// the engine shard count, and writes latency percentiles, shed rates, and
// admission-control behavior to a BENCH_serve.json baseline — the serving
// companion to rpbench's algorithm baselines.
//
//	rploadgen                         # full run: 10k tenants, shards 1,2,4,8
//	rploadgen -quick                  # CI-sized smoke run
//	rploadgen -tenants 2000 -requests 10000 -conc 16 -shards 1,4
//	rploadgen -addr localhost:8080    # drive an already-running rpserved
//	rploadgen -quick -cluster 2 -rpserved ./rpserved   # spawn a real cluster
//
// In the default in-process mode the harness builds the service per shard
// count and drives its handler directly (no sockets), so measured latencies
// are the service stack — router, admission, locks, lattice, mining — not
// loopback noise. With -addr it instead targets a live server over real
// HTTP and reports a single entry (configure shards and quotas on the
// server, via rpserved's flags). With -cluster N it spawns N `rpserved
// -role shard` processes plus a router from the binary named by -rpserved,
// drives the workload through the router over loopback HTTP, and reports a
// "cluster" entry — comparing it against the "zipf" entry at the same shard
// count prices the process boundary.
//
// The workload is deliberately cache-hostile: every tenant owns a small
// database, the lattice budget is far below the working set, and tenant
// selection is Zipf-skewed — so hot tenants are served from the lattice
// while cold tenants force installs that pay eviction scans. The shard sweep
// then shows how splitting the store (and the entry and queue locks) changes
// the tail.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"gogreen/internal/bench"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "CI-sized smoke run")
		out      = flag.String("out", "BENCH_serve.json", "output report path (\"-\" = stdout)")
		tenants  = flag.Int("tenants", 0, "simulated tenant count (0 = mode default)")
		requests = flag.Int("requests", 0, "mining requests per shard-grid point (0 = mode default)")
		conc     = flag.Int("conc", 0, "concurrent client workers (0 = mode default)")
		shards   = flag.String("shards", "", "comma-separated shard-count grid (default 1,2,4,8; quick 1,2)")
		budgetKB = flag.Int64("cache-budget-kb", 0, "lattice budget in KiB (0 = mode default)")
		addr     = flag.String("addr", "", "drive a running service at this host:port instead of in-process servers")
		cluster  = flag.Int("cluster", 0, "spawn this many shard processes plus a router and drive the cluster (needs -rpserved)")
		rpserved = flag.String("rpserved", "", "path to a built rpserved binary (required with -cluster)")
	)
	flag.Parse()

	cfg := bench.DefaultServeConfig(*quick)
	if *tenants > 0 {
		cfg.Tenants = *tenants
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	if *conc > 0 {
		cfg.Concurrency = *conc
	}
	if *budgetKB > 0 {
		cfg.CacheBudget = *budgetKB << 10
	}
	if *shards != "" {
		grid, err := parseShards(*shards)
		if err != nil {
			log.Fatalf("rploadgen: %v", err)
		}
		cfg.Shards = grid
	}

	progress := func(msg string) { fmt.Fprintln(os.Stderr, "rploadgen: "+msg) }
	var (
		rep bench.ServeReport
		err error
	)
	switch {
	case *cluster > 0:
		if *rpserved == "" {
			log.Fatal("rploadgen: -cluster needs -rpserved pointing at a built rpserved binary")
		}
		rep, err = bench.ServeCluster(cfg, *rpserved, *cluster, progress)
	case *addr != "":
		rep, err = bench.ServeExternal(cfg, bench.HTTPDoer(*addr), progress)
	default:
		rep, err = bench.ServePerf(cfg, progress)
	}
	if err != nil {
		log.Fatalf("rploadgen: %v", err)
	}

	summarize(rep)
	if *out == "-" {
		os.Stdout.Write(rep.JSON())
		return
	}
	if err := os.WriteFile(*out, rep.JSON(), 0o644); err != nil {
		log.Fatalf("rploadgen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "rploadgen: wrote %s\n", *out)
}

// parseShards parses the -shards grid.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards entry %q (want positive integers)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// summarize prints a human-readable table of the run to stderr.
func summarize(rep bench.ServeReport) {
	fmt.Fprintf(os.Stderr, "\n%-16s %7s %9s %9s %9s %9s %9s %7s\n",
		"phase", "shards", "p50 ms", "p90 ms", "p99 ms", "req/s", "shed", "hits")
	for _, e := range rep.Entries {
		fmt.Fprintf(os.Stderr, "%-16s %7d %9.3f %9.3f %9.3f %9.0f %8.1f%% %7d\n",
			e.Phase, e.Shards, e.P50Ms, e.P90Ms, e.P99Ms, e.ReqPerSec, e.ShedRate*100, e.CacheHits)
	}
	if rep.Warning != "" {
		fmt.Fprintln(os.Stderr, "warning: "+rep.Warning)
	}
	fmt.Fprintln(os.Stderr)
}
