// Command rploadgen is the load harness for the sharded mining service: it
// simulates thousands of tenants firing Zipf-skewed mining traffic, sweeps
// the engine shard count, and writes latency percentiles, shed rates, and
// admission-control behavior to a BENCH_serve.json baseline — the serving
// companion to rpbench's algorithm baselines.
//
//	rploadgen                         # full run: 10k tenants, shards 1,2,4,8
//	rploadgen -quick                  # CI-sized smoke run
//	rploadgen -tenants 2000 -requests 10000 -conc 16 -shards 1,4
//	rploadgen -addr localhost:8080    # drive an already-running rpserved
//
// In the default in-process mode the harness builds the service per shard
// count and drives its handler directly (no sockets), so measured latencies
// are the service stack — router, admission, locks, lattice, mining — not
// loopback noise. With -addr it instead targets a live server over real
// HTTP and reports a single entry (configure shards and quotas on the
// server, via rpserved's flags).
//
// The workload is deliberately cache-hostile: every tenant owns a small
// database, the lattice budget is far below the working set, and tenant
// selection is Zipf-skewed — so hot tenants are served from the lattice
// while cold tenants force installs that pay eviction scans. The shard sweep
// then shows how splitting the store (and the entry and queue locks) changes
// the tail.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"gogreen/internal/bench"
	"gogreen/internal/server"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "CI-sized smoke run")
		out      = flag.String("out", "BENCH_serve.json", "output report path (\"-\" = stdout)")
		tenants  = flag.Int("tenants", 0, "simulated tenant count (0 = mode default)")
		requests = flag.Int("requests", 0, "mining requests per shard-grid point (0 = mode default)")
		conc     = flag.Int("conc", 0, "concurrent client workers (0 = mode default)")
		shards   = flag.String("shards", "", "comma-separated shard-count grid (default 1,2,4,8; quick 1,2)")
		budgetKB = flag.Int64("cache-budget-kb", 0, "lattice budget in KiB (0 = mode default)")
		addr     = flag.String("addr", "", "drive a running service at this host:port instead of in-process servers")
	)
	flag.Parse()

	cfg := bench.DefaultServeConfig(*quick)
	if *tenants > 0 {
		cfg.Tenants = *tenants
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	if *conc > 0 {
		cfg.Concurrency = *conc
	}
	if *budgetKB > 0 {
		cfg.CacheBudget = *budgetKB << 10
	}
	if *shards != "" {
		grid, err := parseShards(*shards)
		if err != nil {
			log.Fatalf("rploadgen: %v", err)
		}
		cfg.Shards = grid
	}

	progress := func(msg string) { fmt.Fprintln(os.Stderr, "rploadgen: "+msg) }
	var (
		rep bench.ServeReport
		err error
	)
	if *addr != "" {
		rep, err = bench.ServeExternal(cfg, httpDoer(*addr), progress)
	} else {
		rep, err = bench.ServePerf(cfg, progress)
	}
	if err != nil {
		log.Fatalf("rploadgen: %v", err)
	}

	summarize(rep)
	if *out == "-" {
		os.Stdout.Write(rep.JSON())
		return
	}
	if err := os.WriteFile(*out, rep.JSON(), 0o644); err != nil {
		log.Fatalf("rploadgen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "rploadgen: wrote %s\n", *out)
}

// parseShards parses the -shards grid.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards entry %q (want positive integers)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// httpDoer targets a live service over real HTTP.
func httpDoer(addr string) func(method, path, tenant, body string) (int, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return func(method, path, tenant, body string) (int, error) {
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		if tenant != "" {
			req.Header.Set(server.TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
}

// summarize prints a human-readable table of the run to stderr.
func summarize(rep bench.ServeReport) {
	fmt.Fprintf(os.Stderr, "\n%-16s %7s %9s %9s %9s %9s %9s %7s\n",
		"phase", "shards", "p50 ms", "p90 ms", "p99 ms", "req/s", "shed", "hits")
	for _, e := range rep.Entries {
		fmt.Fprintf(os.Stderr, "%-16s %7d %9.3f %9.3f %9.3f %9.0f %8.1f%% %7d\n",
			e.Phase, e.Shards, e.P50Ms, e.P90Ms, e.P99Ms, e.ReqPerSec, e.ShedRate*100, e.CacheHits)
	}
	if rep.Warning != "" {
		fmt.Fprintln(os.Stderr, "warning: "+rep.Warning)
	}
	fmt.Fprintln(os.Stderr)
}
