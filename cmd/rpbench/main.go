// Command rpbench runs the repository's performance benchmark grid and
// writes the BENCH_compress.json / BENCH_mine.json baselines.
//
// The compress experiment measures phase one of recycling — the naive
// serial scan, the indexed serial engine, and the sharded parallel engine —
// on dense Connect-4-style workloads, reporting ns/op, allocs/op, the
// compression ratio, and the speedup against the serial scan. The mine
// experiment measures the mining phase: fresh H-Mine, then every wrappable
// recycled miner the engine registry carries (rp-hmine, rp-fptree,
// rp-treeproj) over the precompressed database serially and across a
// worker-count grid through the registry's derived par-* variants, reporting
// each parallel row's speedup against its own miner's serial row. The
// pipeline experiment runs the full two-phase pipeline through
// engine.Pipeline and records the per-phase timings its PhaseObserver hook
// reports.
//
// Usage:
//
//	go run ./cmd/rpbench              # full grid, writes ./BENCH_*.json
//	go run ./cmd/rpbench -quick       # CI smoke: smaller inputs, same files
//	go run ./cmd/rpbench -scale 0.02 -out bench-out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gogreen/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller inputs (CI smoke mode)")
	scale := flag.Float64("scale", 0.01, "dataset scale for preset workloads (1.0 = paper size)")
	out := flag.String("out", ".", "directory for the BENCH_*.json files")
	flag.Parse()

	cfg := bench.Config{Scale: *scale}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	for _, exp := range []struct {
		file string
		run  func(bench.Config, bool) (bench.PerfReport, error)
	}{
		{"BENCH_compress.json", bench.CompressPerf},
		{"BENCH_mine.json", bench.MinePerf},
		{"BENCH_pipeline.json", bench.PipelinePerf},
	} {
		rep, err := exp.run(cfg, *quick)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, exp.file)
		if err := os.WriteFile(path, rep.JSON(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
		for _, e := range rep.Entries {
			fmt.Printf("  %-12s %-20s %12.0f ns/op  %8d allocs/op", e.Dataset, e.Variant, e.NsPerOp, e.AllocsPerOp)
			if e.SpeedupVsSerial > 0 {
				fmt.Printf("  %5.2fx", e.SpeedupVsSerial)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpbench:", err)
	os.Exit(1)
}
