// Command rpbench runs the repository's performance benchmark grid and
// writes the BENCH_compress.json / BENCH_mine.json / BENCH_pipeline.json /
// BENCH_lattice.json baselines.
//
// The compress experiment measures phase one of recycling — the naive
// serial scan, the indexed serial engine, and the sharded parallel engine —
// on dense Connect-4-style workloads, reporting ns/op, allocs/op, the
// compression ratio, and the speedup against the serial scan. The mine
// experiment measures the mining phase: fresh H-Mine, then every wrappable
// recycled miner the engine registry carries (rp-hmine, rp-fptree,
// rp-treeproj) over the precompressed database serially and across a
// worker-count grid through the registry's derived par-* variants, reporting
// each parallel row's speedup against its own miner's serial row. The
// pipeline experiment runs the full two-phase pipeline through
// engine.Pipeline and records the per-phase timings its PhaseObserver hook
// reports. The lattice experiment serves a Zipf-distributed threshold stream
// with and without the materialized threshold lattice and records the
// steady-state speedup, cache-hit count, and mine-phase count.
//
// Every experiment runs once per point of a GOMAXPROCS grid (default
// 1, 4 and NumCPU, deduplicated) and each entry embeds the gomaxprocs it
// was measured at, so parallel speedup rows can never masquerade as
// multi-core results again. On a machine without real parallelism
// (NumCPU=1) writing baselines is refused unless -allow-serial states the
// limitation explicitly.
//
// Usage:
//
//	go run ./cmd/rpbench              # full grid, writes ./BENCH_*.json
//	go run ./cmd/rpbench -quick       # CI smoke: smaller inputs, same files
//	go run ./cmd/rpbench -scale 0.02 -out bench-out -procs 1,8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"gogreen/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller inputs (CI smoke mode)")
	scale := flag.Float64("scale", 0.01, "dataset scale for preset workloads (1.0 = paper size)")
	out := flag.String("out", ".", "directory for the BENCH_*.json files")
	procs := flag.String("procs", "", "comma-separated GOMAXPROCS grid (default \"1,4,max\"; \"max\" = NumCPU)")
	allowSerial := flag.Bool("allow-serial", false,
		"allow writing baselines on a single-core machine, where parallel speedups are scheduling artifacts")
	flag.Parse()

	grid, err := procsGrid(*procs)
	if err != nil {
		fatal(err)
	}
	if (runtime.NumCPU() == 1 || grid[len(grid)-1] == 1) && !*allowSerial {
		fatal(fmt.Errorf("refusing to write baselines: NumCPU=%d, procs grid %v has no real parallelism "+
			"(speedup columns would be meaningless); pass -allow-serial to record anyway", runtime.NumCPU(), grid))
	}

	cfg := bench.Config{Scale: *scale}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	defaultProcs := runtime.GOMAXPROCS(0)
	for _, exp := range []struct {
		file string
		run  func(bench.Config, bool) (bench.PerfReport, error)
	}{
		{"BENCH_compress.json", bench.CompressPerf},
		{"BENCH_mine.json", bench.MinePerf},
		{"BENCH_pipeline.json", bench.PipelinePerf},
		{"BENCH_lattice.json", bench.LatticePerf},
	} {
		var merged bench.PerfReport
		for i, g := range grid {
			runtime.GOMAXPROCS(g)
			rep, err := exp.run(cfg, *quick)
			runtime.GOMAXPROCS(defaultProcs)
			if err != nil {
				fatal(err)
			}
			if i == 0 {
				merged = rep
				merged.ProcsGrid = []int{rep.GOMAXPROCS}
			} else {
				merged.Merge(rep)
			}
		}
		merged.NumCPU = runtime.NumCPU()
		path := filepath.Join(*out, exp.file)
		if err := os.WriteFile(path, merged.JSON(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (procs grid %v)\n", path, merged.ProcsGrid)
		for _, e := range merged.Entries {
			fmt.Printf("  p%-3d %-12s %-20s %12.0f ns/op  %8d allocs/op",
				e.GOMAXPROCS, e.Dataset, e.Variant, e.NsPerOp, e.AllocsPerOp)
			if e.SpeedupVsSerial > 0 {
				fmt.Printf("  %5.2fx", e.SpeedupVsSerial)
			}
			fmt.Println()
		}
	}
}

// procsGrid parses the -procs flag into a sorted, deduplicated GOMAXPROCS
// grid; empty means the default 1,4,NumCPU.
func procsGrid(s string) ([]int, error) {
	if s == "" {
		s = "1,4,max"
	}
	var grid []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		n := runtime.NumCPU()
		if f != "max" {
			var err error
			if n, err = strconv.Atoi(f); err != nil || n < 1 {
				return nil, fmt.Errorf("bad -procs entry %q", f)
			}
		}
		grid = append(grid, n)
	}
	sort.Ints(grid)
	out := grid[:0]
	for i, g := range grid {
		if i == 0 || g != out[len(out)-1] {
			out = append(out, g)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpbench:", err)
	os.Exit(1)
}
