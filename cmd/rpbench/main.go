// Command rpbench runs the repository's performance benchmark grid and
// writes the BENCH_compress.json / BENCH_mine.json / BENCH_pipeline.json /
// BENCH_lattice.json baselines.
//
// The compress experiment measures phase one of recycling — the naive
// serial scan, the indexed serial engine, and the sharded parallel engine —
// on dense Connect-4-style workloads, reporting ns/op, allocs/op, the
// compression ratio, and the speedup against the serial scan. The mine
// experiment measures the mining phase: fresh H-Mine, then every wrappable
// recycled miner the engine registry carries (rp-hmine, rp-fptree,
// rp-treeproj) over the precompressed database serially and across a
// worker-count grid through the registry's derived par-* variants, reporting
// each parallel row's speedup against its own miner's serial row. The
// pipeline experiment runs the full two-phase pipeline through
// engine.Pipeline and records the per-phase timings its PhaseObserver hook
// reports. The lattice experiment serves a Zipf-distributed threshold stream
// with and without the materialized threshold lattice and records the
// steady-state speedup, cache-hit count, and mine-phase count.
//
// Every experiment runs once per point of a GOMAXPROCS grid (default
// 1, 4 and NumCPU, deduplicated) and each entry embeds the gomaxprocs it
// was measured at, so parallel speedup rows can never masquerade as
// multi-core results again. Grid points above the machine's core count are
// clamped to NumCPU (oversubscribed GOMAXPROCS measures scheduler thrash,
// not the code) unless -force-procs keeps them; either way the report's
// warning field records what happened. On a machine without real
// parallelism (NumCPU=1) writing baselines is refused unless -allow-serial
// states the limitation explicitly.
//
// Two maintenance modes skip measurement entirely: -check validates a
// recorded mine report against the bench.SpeedupFloor guardrail (every
// par-* 1-worker row must hold ≥ 0.9x of its serial miner — the CI gate
// that keeps wrapper dispatch overhead honest), and -diff compares two
// recorded reports entry by entry (time ratio, allocs, bytes).
//
// Usage:
//
//	go run ./cmd/rpbench              # full grid, writes ./BENCH_*.json
//	go run ./cmd/rpbench -quick       # CI smoke: smaller inputs, same files
//	go run ./cmd/rpbench -scale 0.02 -out bench-out -procs 1,8
//	go run ./cmd/rpbench -check bench-out/BENCH_mine.json
//	go run ./cmd/rpbench -diff BENCH_mine.json bench-out/BENCH_mine.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"gogreen/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller inputs (CI smoke mode)")
	scale := flag.Float64("scale", 0.01, "dataset scale for preset workloads (1.0 = paper size)")
	out := flag.String("out", ".", "directory for the BENCH_*.json files")
	procs := flag.String("procs", "", "comma-separated GOMAXPROCS grid (default \"1,4,max\"; \"max\" = NumCPU)")
	allowSerial := flag.Bool("allow-serial", false,
		"allow writing baselines on a single-core machine, where parallel speedups are scheduling artifacts")
	forceProcs := flag.Bool("force-procs", false,
		"keep procs grid points above NumCPU instead of clamping them (measures scheduler oversubscription)")
	check := flag.String("check", "",
		"validate the given BENCH_mine.json against the speedup guardrail and exit")
	diffMode := flag.Bool("diff", false,
		"compare two recorded reports: rpbench -diff old.json new.json")
	flag.Parse()

	if *check != "" {
		runCheck(*check)
		return
	}
	if *diffMode {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff takes exactly two report files, got %d", flag.NArg()))
		}
		runDiff(flag.Arg(0), flag.Arg(1))
		return
	}

	grid, err := procsGrid(*procs)
	if err != nil {
		fatal(err)
	}
	var warnings []string
	if clamped := clampGrid(grid); clamped != nil {
		if *forceProcs {
			warnings = append(warnings, fmt.Sprintf(
				"procs grid %v exceeds NumCPU=%d (kept by -force-procs); oversubscribed rows measure scheduler thrash",
				grid, runtime.NumCPU()))
		} else {
			fmt.Printf("clamping procs grid %v to %v (NumCPU=%d; pass -force-procs to keep oversubscribed points)\n",
				grid, clamped, runtime.NumCPU())
			grid = clamped
		}
	}
	if runtime.NumCPU() == 1 || grid[len(grid)-1] == 1 {
		if !*allowSerial {
			fatal(fmt.Errorf("refusing to write baselines: NumCPU=%d, procs grid %v has no real parallelism "+
				"(speedup columns would be meaningless); pass -allow-serial to record anyway", runtime.NumCPU(), grid))
		}
		warnings = append(warnings, fmt.Sprintf(
			"recorded with -allow-serial on NumCPU=%d: multi-worker speedups are scheduling artifacts, not parallelism",
			runtime.NumCPU()))
	}

	cfg := bench.Config{Scale: *scale}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	defaultProcs := runtime.GOMAXPROCS(0)
	for _, exp := range []struct {
		file string
		run  func(bench.Config, bool) (bench.PerfReport, error)
	}{
		{"BENCH_compress.json", bench.CompressPerf},
		{"BENCH_mine.json", bench.MinePerf},
		{"BENCH_pipeline.json", bench.PipelinePerf},
		{"BENCH_lattice.json", bench.LatticePerf},
	} {
		var merged bench.PerfReport
		for i, g := range grid {
			runtime.GOMAXPROCS(g)
			rep, err := exp.run(cfg, *quick)
			runtime.GOMAXPROCS(defaultProcs)
			if err != nil {
				fatal(err)
			}
			if i == 0 {
				merged = rep
				merged.ProcsGrid = []int{rep.GOMAXPROCS}
			} else {
				merged.Merge(rep)
			}
		}
		merged.NumCPU = runtime.NumCPU()
		merged.Warning = strings.Join(warnings, "; ")
		path := filepath.Join(*out, exp.file)
		if err := os.WriteFile(path, merged.JSON(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (procs grid %v)\n", path, merged.ProcsGrid)
		if merged.Warning != "" {
			fmt.Printf("  warning: %s\n", merged.Warning)
		}
		for _, e := range merged.Entries {
			fmt.Printf("  p%-3d %-12s %-20s %12.0f ns/op  %8d allocs/op  %10d B/op",
				e.GOMAXPROCS, e.Dataset, e.Variant, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
			if e.SpeedupVsSerial > 0 {
				fmt.Printf("  %5.2fx", e.SpeedupVsSerial)
			}
			fmt.Println()
		}
	}
}

// runCheck gates a recorded mine report on the speedup floor and exits
// non-zero on any violation — the CI guardrail entry point.
func runCheck(path string) {
	rep, err := bench.LoadReport(path)
	if err != nil {
		fatal(err)
	}
	violations := bench.CheckReport(rep)
	if len(violations) == 0 {
		fmt.Printf("%s: all par-* 1-worker rows hold the %.2fx speedup floor\n", path, bench.SpeedupFloor)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %d guardrail violation(s):\n", path, len(violations))
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "  "+v)
	}
	os.Exit(1)
}

// runDiff prints an entry-by-entry comparison of two recorded reports.
func runDiff(oldPath, newPath string) {
	old, err := bench.LoadReport(oldPath)
	if err != nil {
		fatal(err)
	}
	cur, err := bench.LoadReport(newPath)
	if err != nil {
		fatal(err)
	}
	rows, onlyOld, onlyNew := bench.DiffReports(old, cur)
	fmt.Printf("%-46s %22s %8s %24s %24s\n", "entry", "ns/op old→new", "ratio", "allocs/op old→new", "B/op old→new")
	for _, r := range rows {
		fmt.Printf("%-46s %10.0f→%-10.0f %7.2fx %11d→%-11d %11d→%-11d\n",
			r.Key, r.OldNs, r.NewNs, r.NsRatio(), r.OldAllocs, r.NewAllocs, r.OldBytes, r.NewBytes)
	}
	for _, k := range onlyOld {
		fmt.Printf("%-46s only in %s\n", k, oldPath)
	}
	for _, k := range onlyNew {
		fmt.Printf("%-46s only in %s\n", k, newPath)
	}
}

// clampGrid returns the grid with every point above NumCPU clamped down
// (sorted, deduplicated), or nil when nothing exceeds the machine.
func clampGrid(grid []int) []int {
	n := runtime.NumCPU()
	over := false
	for _, g := range grid {
		if g > n {
			over = true
		}
	}
	if !over {
		return nil
	}
	out := make([]int, 0, len(grid))
	for _, g := range grid {
		if g > n {
			g = n
		}
		if len(out) == 0 || g != out[len(out)-1] {
			out = append(out, g)
		}
	}
	return out
}

// procsGrid parses the -procs flag into a sorted, deduplicated GOMAXPROCS
// grid; empty means the default 1,4,NumCPU.
func procsGrid(s string) ([]int, error) {
	if s == "" {
		s = "1,4,max"
	}
	var grid []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		n := runtime.NumCPU()
		if f != "max" {
			var err error
			if n, err = strconv.Atoi(f); err != nil || n < 1 {
				return nil, fmt.Errorf("bad -procs entry %q", f)
			}
		}
		grid = append(grid, n)
	}
	sort.Ints(grid)
	out := grid[:0]
	for i, g := range grid {
		if i == 0 || g != out[len(out)-1] {
			out = append(out, g)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpbench:", err)
	os.Exit(1)
}
