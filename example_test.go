package gogreen_test

import (
	"context"
	"fmt"

	"gogreen"
)

// paperDB is the worked example of the paper's Table 1.
func paperDB() *gogreen.DB {
	return gogreen.FromNames([][]string{
		{"a", "c", "d", "e", "f", "g"},
		{"b", "c", "d", "f", "g"},
		{"c", "e", "f", "g"},
		{"a", "c", "e", "i"},
		{"a", "e", "h"},
	})
}

// The complete two-round loop: mine once, recycle into a relaxed re-mine.
// The context aborts either round cooperatively on cancel or deadline.
func ExampleMineRecycling() {
	db := paperDB()
	ctx := context.Background()

	round1, _ := gogreen.Mine(ctx, db, gogreen.HMine, gogreen.WithMinCount(3))
	round2, _ := gogreen.MineRecycling(ctx, db, round1.Patterns,
		gogreen.WithMinCount(2), gogreen.WithEngine(gogreen.RecycleHMine))

	fmt.Printf("round 1 (ξ=%d, %s): %d patterns\n", round1.MinCount, round1.Source, len(round1.Patterns))
	fmt.Printf("round 2 (ξ=%d, %s): %d patterns\n", round2.MinCount, round2.Source, len(round2.Patterns))
	// Output:
	// round 1 (ξ=3, fresh): 11 patterns
	// round 2 (ξ=2, recycled): 27 patterns
}

// Compression reproduces the paper's Table 2: tuples 100-300 group under
// fgc, tuples 400-500 under ae.
func ExampleCompress() {
	db := paperDB()
	round1, _ := gogreen.Mine(context.Background(), db, gogreen.HMine, gogreen.WithMinCount(3))

	cdb := gogreen.Compress(db, round1.Patterns, gogreen.MCP)
	for _, g := range cdb.Groups {
		fmt.Printf("group %v covers %d tuples\n", db.Dict().Names(g.Pattern), g.Count())
	}
	// Output:
	// group [c f g] covers 3 tuples
	// group [a e] covers 2 tuples
}

// Tightening the threshold needs no mining at all.
func ExampleFilterTightened() {
	db := paperDB()
	round1, _ := gogreen.Mine(context.Background(), db, gogreen.HMine, gogreen.WithMinCount(2))

	tightened := gogreen.FilterTightened(round1.Patterns, 4)
	fmt.Printf("%d of %d patterns survive ξ=4\n", len(tightened), len(round1.Patterns))
	// Output:
	// 2 of 27 patterns survive ξ=4
}

// Closed patterns condense the result without losing any information —
// and recycling covers built from them are provably identical.
func ExampleClosed() {
	db := paperDB()
	all, _ := gogreen.Mine(context.Background(), db, gogreen.HMine, gogreen.WithMinCount(2))

	closed := gogreen.Closed(all.Patterns)
	maximal := gogreen.Maximal(all.Patterns)
	fmt.Printf("%d frequent, %d closed, %d maximal\n", len(all.Patterns), len(closed), len(maximal))
	// Output:
	// 27 frequent, 8 closed, 3 maximal
}

// Association rules derive from any complete pattern set.
func ExampleDeriveRules() {
	db := paperDB()
	all, _ := gogreen.Mine(context.Background(), db, gogreen.HMine, gogreen.WithMinCount(3))

	rules := gogreen.DeriveRules(all.Patterns, 1.0, db.Len())
	for _, r := range rules[:3] {
		fmt.Printf("%v => %v (conf %.0f%%)\n",
			db.Dict().Names(r.Antecedent), db.Dict().Names(r.Consequent), r.Confidence*100)
	}
	// Output:
	// [a] => [e] (conf 100%)
	// [f] => [g] (conf 100%)
	// [g] => [f] (conf 100%)
}
