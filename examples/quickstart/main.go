// Quickstart: mine a database once, then recycle the result into a cheaper
// second round at a relaxed threshold — the paper's core loop in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/gen"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/rphmine"
)

func main() {
	// A synthetic market-basket database (the Weather stand-in, scaled
	// down; see cmd/gendata for files you can inspect).
	db := gen.Weather(0.02)
	st := db.Stats()
	fmt.Printf("database: %d transactions, avg length %.1f, %d items\n",
		st.NumTx, st.AvgLen, st.NumItems)

	// Round 1: ordinary mining at ξ_old = 5% with H-Mine.
	xiOld := mining.MinCount(db.Len(), 0.05)
	var round1 mining.Collector
	start := time.Now()
	if err := hmine.New().Mine(db, xiOld, &round1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 1 (ξ=5%%):   %5d patterns in %v\n",
		len(round1.Patterns), time.Since(start).Round(time.Millisecond))

	// The user inspects the result, finds 5% too coarse, and relaxes to 1%.
	xiNew := mining.MinCount(db.Len(), 0.01)

	// Round 2a: the naive way — mine from scratch.
	var scratch mining.Count
	start = time.Now()
	if err := hmine.New().Mine(db, xiNew, &scratch); err != nil {
		log.Fatal(err)
	}
	fromScratch := time.Since(start)
	fmt.Printf("round 2 fresh:     %5d patterns in %v\n",
		scratch.N, fromScratch.Round(time.Millisecond))

	// Round 2b: recycle round 1. Phase one compresses the database using
	// the old patterns under the Minimize Cost Principle; phase two mines
	// the compressed database with the H-Mine adaptation.
	start = time.Now()
	cdb := core.Compress(db, round1.Patterns, core.MCP)
	compressT := time.Since(start)
	s := cdb.Stats()
	fmt.Printf("compression:       %d groups cover %d/%d tuples, ratio %.2f (%v)\n",
		s.NumGroups, s.Grouped, st.NumTx, s.Ratio, compressT.Round(time.Millisecond))

	var recycled mining.Count
	start = time.Now()
	if err := rphmine.New().MineCDB(cdb, xiNew, &recycled); err != nil {
		log.Fatal(err)
	}
	viaRecycling := time.Since(start)
	fmt.Printf("round 2 recycled:  %5d patterns in %v (%.1fx faster)\n",
		recycled.N, viaRecycling.Round(time.Millisecond),
		fromScratch.Seconds()/viaRecycling.Seconds())

	if recycled.N != scratch.N {
		log.Fatalf("recycling mismatch: %d vs %d patterns", recycled.N, scratch.N)
	}
	fmt.Println("both rounds found identical pattern sets ✓")
}
