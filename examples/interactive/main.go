// Interactive refinement: the session layer drives the paper's motivating
// scenario — a user repeatedly adjusts the minimum support, and each round
// automatically reuses earlier rounds (filtering when the constraint
// tightens, compressing + recycling when it relaxes).
//
//	go run ./examples/interactive
package main

import (
	"context"
	"fmt"
	"log"

	"gogreen/internal/constraints"
	"gogreen/internal/gen"
	"gogreen/internal/mining"
	"gogreen/internal/session"
)

func main() {
	db := gen.Connect4(0.05)
	fmt.Printf("database: %d dense transactions of %d items each\n",
		db.Len(), len(db.Tx(0)))

	s := session.New(db, session.WithEngine("rp-hmine"))

	// The user starts conservative, then relaxes twice, then decides the
	// middle setting was right after all.
	script := []float64{0.95, 0.935, 0.92, 0.94}
	for i, xi := range script {
		cs := constraints.Set{constraints.MinSupport{Count: mining.MinCount(db.Len(), xi)}}
		res, err := s.Mine(context.Background(), cs)
		if err != nil {
			log.Fatal(err)
		}
		src := string(res.Source)
		if res.Round >= 0 {
			src = fmt.Sprintf("%s from round %d", res.Source, res.Round+1)
		}
		fmt.Printf("round %d: ξ=%.3f → %6d patterns in %8v  (%s)\n",
			i+1, xi, len(res.Patterns), res.Elapsed.Round(1000), src)
	}

	fmt.Println("\nhistory:")
	for i, r := range s.Rounds() {
		fmt.Printf("  %d. %-14s %6d patterns, %v\n",
			i+1, constraints.Describe(r.Constraints), len(r.Result.Patterns), r.Result.Source)
	}
}
