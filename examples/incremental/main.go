// Incremental maintenance: keep a pattern set current while the database
// grows and shrinks — the incremental-update application of Section 2,
// contrasted against the classical FUP technique. Recycling keeps working
// when the change is large or the threshold is relaxed; FUP cannot.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"time"

	"gogreen/internal/fup"
	"gogreen/internal/gen"
	"gogreen/internal/incremental"
	"gogreen/internal/mining"
)

func main() {
	db := gen.Weather(0.01)
	fmt.Printf("day 0: %d transactions\n", db.Len())

	m := incremental.New(db, incremental.WithEngine("rp-hmine"))
	min := mining.MinCount(m.Len(), 0.02)
	res, err := m.Refresh(min)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 0 mine: %d patterns in %v\n", len(res.Patterns), res.Elapsed.Round(time.Millisecond))
	day0FP, _ := m.Patterns()
	day0Min := min

	// Day 1: a big batch of new transactions arrives (half the database
	// again) and the oldest 5% are aged out.
	delta := gen.Weather(0.005)
	m.Insert(delta.All())
	var old []int
	for i := 0; i < db.Len()/20; i++ {
		old = append(old, i)
	}
	if err := m.Delete(old); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1: +%d new, -%d aged out → %d transactions\n",
		delta.Len(), len(old), m.Len())

	min = mining.MinCount(m.Len(), 0.02)
	res, err = m.Refresh(min)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1 refresh (recycled=%v): %d patterns in %v\n",
		res.Recycled, len(res.Patterns), res.Elapsed.Round(time.Millisecond))

	// For contrast: what FUP can and cannot do with the same change.
	// Deletions are outside FUP1's model, so compare on insert-only.
	insertOnly := incremental.New(db)
	insertOnly.Insert(delta.All())
	start := time.Now()
	ps, err := fup.Update(db, day0FP, day0Min, gen.Weather(0.005),
		mining.MinCount(db.Len()+delta.Len(), 0.02))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FUP on the insert-only part: %d patterns in %v\n",
		len(ps), time.Since(start).Round(time.Millisecond))

	// Day 2: the analyst relaxes the threshold — FUP rejects this, the
	// maintainer just recycles.
	relaxed := mining.MinCount(m.Len(), 0.01)
	if _, err := fup.Update(db, day0FP, day0Min, delta, relaxed); err != nil {
		fmt.Printf("FUP at the relaxed threshold: %v\n", err)
	}
	res, err = m.Refresh(relaxed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 2 relaxed refresh (recycled=%v): %d patterns in %v\n",
		res.Recycled, len(res.Patterns), res.Elapsed.Round(time.Millisecond))
}
