// Multi-user recycling: one analyst's mining result, persisted through the
// pattern store, speeds up a different analyst's later query on the same
// data — the paper's "patterns discovered by one user provide opportunity
// for the others to recycle" (Section 2).
//
//	go run ./examples/multiuser
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gogreen/internal/constraints"
	"gogreen/internal/gen"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/patternio"
	"gogreen/internal/session"
)

func main() {
	dir, err := os.MkdirTemp("", "gogreen-multiuser-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store := filepath.Join(dir, "pumsb-90pct.fp")

	db := gen.Pumsb(0.05)
	fmt.Printf("shared database: %d census-like tuples of %d attributes\n",
		db.Len(), len(db.Tx(0)))

	// --- Alice, Monday: mines at 90% support and publishes her result.
	aliceMin := mining.MinCount(db.Len(), 0.90)
	var alice mining.Collector
	t0 := time.Now()
	if err := hmine.New().Mine(db, aliceMin, &alice); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice: mined %d patterns at ξ=90%% in %v\n",
		len(alice.Patterns), time.Since(t0).Round(time.Millisecond))
	if err := patternio.WriteFile(store, patternio.Set{Patterns: alice.Patterns, MinSupport: aliceMin}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice: published to %s\n", filepath.Base(store))

	// --- Bob, Tuesday: needs a deeper cut (84%). Without Alice he mines
	// from scratch; with her published set he recycles.
	bobXi := 0.84
	bobCS := constraints.Set{constraints.MinSupport{Count: mining.MinCount(db.Len(), bobXi)}}

	bob := session.New(db, session.WithEngine("rp-hmine"))
	t0 = time.Now()
	fresh, err := bob.Mine(context.Background(), bobCS) // no history: mines from scratch
	if err != nil {
		log.Fatal(err)
	}
	freshT := time.Since(t0)
	fmt.Printf("bob (no sharing):   %d patterns in %v\n", len(fresh.Patterns), freshT.Round(time.Millisecond))

	shared, err := patternio.ReadFile(store)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	recycled, err := bob.MineRecycling(context.Background(), bobCS, shared.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	recycledT := time.Since(t0)
	fmt.Printf("bob (with alice's): %d patterns in %v (%.1fx faster)\n",
		len(recycled.Patterns), recycledT.Round(time.Millisecond),
		freshT.Seconds()/recycledT.Seconds())

	if len(recycled.Patterns) != len(fresh.Patterns) {
		log.Fatalf("recycled result differs: %d vs %d", len(recycled.Patterns), len(fresh.Patterns))
	}
	fmt.Println("identical results either way ✓")
}
