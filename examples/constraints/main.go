// Constrained mining with constraint changes: the paper's setting is not
// just support thresholds — users combine anti-monotone, monotone, succinct
// and convertible constraints and adjust them between rounds. This example
// mines a product-basket-like database under a price-sum constraint and a
// length constraint, then relaxes and tightens different conjuncts; the
// session picks filter vs recycle per round.
//
//	go run ./examples/constraints
package main

import (
	"context"
	"fmt"
	"log"

	"gogreen/internal/constraints"
	"gogreen/internal/gen"
	"gogreen/internal/mining"
	"gogreen/internal/session"
)

func main() {
	db := gen.Weather(0.01)
	fmt.Printf("database: %d transactions\n", db.Len())

	// Synthetic per-item prices: item id modulo a few bands.
	maxItem := int(db.MaxItem()) + 1
	prices := make([]float64, maxItem)
	for i := range prices {
		prices[i] = float64(i%17)/2 + 0.5
	}

	s := session.New(db, session.WithEngine("rp-hmine"))
	min := func(frac float64) constraints.MinSupport {
		return constraints.MinSupport{Count: mining.MinCount(db.Len(), frac)}
	}

	rounds := []struct {
		label string
		cs    constraints.Set
	}{
		{
			"baseline query: ξ=3%, total price ≤ 25",
			constraints.Set{min(0.03), constraints.SumLeq{Values: prices, Bound: 25}},
		},
		{
			"tighten: also require length ≤ 4",
			constraints.Set{min(0.03), constraints.SumLeq{Values: prices, Bound: 25}, constraints.MaxLength{N: 4}},
		},
		{
			"relax support to 1.5%, keep the rest",
			constraints.Set{min(0.015), constraints.SumLeq{Values: prices, Bound: 25}, constraints.MaxLength{N: 4}},
		},
		{
			"switch to a monotone price floor (avg price ≥ 2, convertible)",
			constraints.Set{min(0.015), constraints.AvgGeq{Values: prices, Bound: 2}},
		},
	}

	for i, r := range rounds {
		res, err := s.Mine(context.Background(), r.cs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d (%s):\n", i+1, r.label)
		fmt.Printf("  %s → %d patterns, %v, source=%s\n",
			constraints.Describe(r.cs), len(res.Patterns),
			res.Elapsed.Round(1000), res.Source)
		// Show a few example patterns with their aggregate price.
		shown := 0
		for _, p := range res.Patterns {
			if len(p.Items) < 2 {
				continue
			}
			sum := 0.0
			for _, it := range p.Items {
				sum += prices[it]
			}
			fmt.Printf("    e.g. %v  support=%d  Σprice=%.1f\n", p.Items, p.Support, sum)
			if shown++; shown == 2 {
				break
			}
		}
	}
}
