module gogreen

go 1.22
